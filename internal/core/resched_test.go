package core

import (
	"math/rand"
	"testing"

	"flb/internal/fault"
	"flb/internal/machine"
	"flb/internal/workload"
)

// suffixRequest fabricates a mid-execution repair problem on a frozen
// random DAG: processor `dead` of `procs` has crashed at `now`, tasks
// topologically before a cut are executed, the rest are pending.
func suffixRequest(t *testing.T, seed int64, procs int, dead machine.Proc, now float64) *fault.Request {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := workload.GNPDag(rng, 30, 0.2)
	workload.RandomizeWeights(g, rng, nil, 1)
	g.Freeze()
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumTasks()
	req := &fault.Request{
		G:        g,
		Sys:      machine.NewSystem(procs),
		Now:      now,
		Alive:    make([]bool, procs),
		Executed: make([]bool, n),
		Finish:   make([]float64, n),
		Proc:     make([]machine.Proc, n),
		Floor:    make([]float64, procs),
	}
	for p := 0; p < procs; p++ {
		req.Alive[p] = p != dead
		if p != dead {
			req.Floor[p] = now
		}
	}
	// Execute a topological prefix at fabricated times; the suffix stays
	// pending in topological order (a valid execution order).
	cut := n / 2
	for i, tk := range topo {
		req.Proc[tk] = machine.Proc(i % procs)
		if i < cut {
			req.Executed[tk] = true
			req.Finish[tk] = now * float64(i+1) / float64(cut)
		} else {
			req.Todo = append(req.Todo, tk)
		}
	}
	req.ResetOut(n)
	return req
}

// TestReschedulerAssignsSuffix: every pending task lands exactly once on
// a survivor, in a precedence-valid sequence.
func TestReschedulerAssignsSuffix(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		req := suffixRequest(t, seed, 4, 1, 10)
		re := NewRescheduler()
		if err := re.Repair(req); err != nil {
			t.Fatal(err)
		}
		if len(req.Seq) != len(req.Todo) {
			t.Fatalf("seed %d: assigned %d of %d", seed, len(req.Seq), len(req.Todo))
		}
		assignedAt := make(map[int]int, len(req.Seq))
		for i, tk := range req.Seq {
			if p := req.NewProc[tk]; !req.Alive[p] {
				t.Fatalf("seed %d: task %d on dead processor %d", seed, tk, p)
			}
			assignedAt[tk] = i
		}
		// Seq must order every pending predecessor before its dependents.
		g := req.G
		for _, tk := range req.Seq {
			for k, pe := 0, g.PredEdges(tk); k < pe.Len(); k++ {
				ei := pe.At(k)
				from := g.Edge(ei).From
				if !req.Executed[from] && assignedAt[from] > assignedAt[tk] {
					t.Fatalf("seed %d: task %d sequenced before its predecessor %d", seed, tk, from)
				}
			}
		}
	}
}

// TestReschedulerDeterministic: identical requests repair identically,
// across separate arenas and across reuses of one arena.
func TestReschedulerDeterministic(t *testing.T) {
	re := NewRescheduler()
	for seed := int64(0); seed < 5; seed++ {
		reqA := suffixRequest(t, seed, 5, 2, 7)
		reqB := suffixRequest(t, seed, 5, 2, 7)
		if err := re.Repair(reqA); err != nil {
			t.Fatal(err)
		}
		if err := NewRescheduler().Repair(reqB); err != nil {
			t.Fatal(err)
		}
		for tk := range reqA.NewProc {
			if reqA.NewProc[tk] != reqB.NewProc[tk] {
				t.Fatalf("seed %d: task %d placed on %d vs %d", seed, tk, reqA.NewProc[tk], reqB.NewProc[tk])
			}
		}
	}
}

// TestReschedulerColdMatchesScheduler: a cold repair (nothing executed,
// floors zero) must reproduce the Scheduler arena's FLB schedule on the
// surviving sub-machine, modulo the survivor index mapping.
func TestReschedulerColdMatchesScheduler(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := workload.GNPDag(rng, 40, 0.15)
	workload.RandomizeWeights(g, rng, nil, 1)
	g.Freeze()
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumTasks()
	procs, dead := 4, machine.Proc(1)
	req := &fault.Request{
		G:        g,
		Sys:      machine.NewSystem(procs),
		Alive:    []bool{true, false, true, true},
		Executed: make([]bool, n),
		Finish:   make([]float64, n),
		Proc:     make([]machine.Proc, n),
		Floor:    make([]float64, procs),
		Todo:     topo,
	}
	req.ResetOut(n)
	if err := NewRescheduler().Repair(req); err != nil {
		t.Fatal(err)
	}
	sub, err := NewScheduler(FLB{}).Schedule(g, machine.NewSystem(procs-1))
	if err != nil {
		t.Fatal(err)
	}
	// Survivors in index order are 0, 2, 3: compact index c maps to them.
	procMap := []machine.Proc{0, 2, 3}
	for tk := 0; tk < n; tk++ {
		if want := procMap[sub.Proc(tk)]; req.NewProc[tk] != want {
			t.Fatalf("task %d on %d, want %d (FLB on survivors); dead=%d", tk, req.NewProc[tk], want, dead)
		}
	}
}

// TestReschedulerSteadyStateAllocs: the repair arena must not allocate
// once warm — repairs run inside the simulated execution loop of every
// fault-sweep cell.
func TestReschedulerSteadyStateAllocs(t *testing.T) {
	re := NewRescheduler()
	req := suffixRequest(t, 1, 4, 1, 10)
	n := req.G.NumTasks()
	for i := 0; i < 2; i++ {
		req.ResetOut(n)
		if err := re.Repair(req); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		req.ResetOut(n)
		if err := re.Repair(req); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("suffix repair allocates %.1f/run steady state, want 0", avg)
	}

	// The cold path goes through the embedded Scheduler arena, which is
	// also allocation-free on frozen graphs once warm.
	cold := suffixRequest(t, 2, 4, 1, 10)
	topo, err := cold.G.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	clear(cold.Executed)
	clear(cold.Floor)
	cold.Todo = topo
	for i := 0; i < 2; i++ {
		cold.ResetOut(n)
		if err := re.Repair(cold); err != nil {
			t.Fatal(err)
		}
	}
	avg = testing.AllocsPerRun(50, func() {
		cold.ResetOut(n)
		if err := re.Repair(cold); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("cold repair allocates %.1f/run steady state, want 0", avg)
	}
}
