package core

import (
	"math"
	"math/rand"
	"testing"

	"flb/internal/algo"
	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/schedule"
	"flb/internal/workload"
)

// TestTable1Placements replays the paper's Table 1: FLB on the Fig. 1
// graph with 2 processors must make exactly the paper's ten decisions.
func TestTable1Placements(t *testing.T) {
	g := workload.PaperExample()
	s, err := FLB{}.Schedule(g, machine.NewSystem(2))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		task, proc    int
		start, finish float64
	}{
		{0, 0, 0, 2},
		{1, 1, 3, 5},
		{2, 0, 5, 7},
		{3, 0, 2, 5},
		{4, 1, 5, 8},
		{5, 0, 7, 10},
		{6, 1, 8, 10},
		{7, 0, 12, 14},
	}
	for _, w := range want {
		if s.Proc(w.task) != w.proc || s.Start(w.task) != w.start || s.Finish(w.task) != w.finish {
			t.Errorf("t%d = (p%d, %g-%g), want (p%d, %g-%g)",
				w.task, s.Proc(w.task), s.Start(w.task), s.Finish(w.task),
				w.proc, w.start, w.finish)
		}
	}
	if got := s.Makespan(); got != 14 {
		t.Errorf("makespan = %v, want 14", got)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTable1Trace checks the trace's list contents against the paper's
// Table 1 columns at every iteration.
func TestTable1Trace(t *testing.T) {
	g := workload.PaperExample()
	var steps []Step
	if _, err := Collect(&steps).Schedule(g, machine.NewSystem(2)); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 8 {
		t.Fatalf("got %d steps, want 8", len(steps))
	}

	type row struct {
		ep0, ep1, non []int // task ids in list order
		task, proc    int
		start         float64
	}
	want := []row{
		{nil, nil, []int{0}, 0, 0, 0},
		{[]int{3, 1, 2}, nil, nil, 3, 0, 2},
		{[]int{2}, nil, []int{1}, 1, 1, 3},
		{[]int{2, 5}, []int{4}, nil, 2, 0, 5},
		{[]int{6}, []int{4}, []int{5}, 4, 1, 5},
		{[]int{6}, nil, []int{5}, 5, 0, 7},
		{nil, nil, []int{6}, 6, 1, 8},
		{[]int{7}, nil, nil, 7, 0, 12},
	}
	ids := func(tv []TaskView) []int {
		out := make([]int, len(tv))
		for i, v := range tv {
			out[i] = v.Task
		}
		return out
	}
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i, w := range want {
		st := steps[i]
		if st.Iter != i {
			t.Errorf("step %d: Iter = %d", i, st.Iter)
		}
		if !eq(ids(st.EPTasks[0]), w.ep0) {
			t.Errorf("step %d: EP(p0) = %v, want %v", i, ids(st.EPTasks[0]), w.ep0)
		}
		if !eq(ids(st.EPTasks[1]), w.ep1) {
			t.Errorf("step %d: EP(p1) = %v, want %v", i, ids(st.EPTasks[1]), w.ep1)
		}
		if !eq(ids(st.NonEP), w.non) {
			t.Errorf("step %d: nonEP = %v, want %v", i, ids(st.NonEP), w.non)
		}
		if st.Task != w.task || st.Proc != w.proc || st.Start != w.start {
			t.Errorf("step %d: scheduled t%d on p%d at %g, want t%d on p%d at %g",
				i, st.Task, st.Proc, st.Start, w.task, w.proc, w.start)
		}
	}

	// Spot-check the EMT/LMT/BL columns the paper prints.
	// Step 1, head of EP(p0): t3[EMT 2; BL 12 / LMT 3].
	tv := steps[1].EPTasks[0][0]
	if tv.EMT != 2 || tv.BL != 12 || tv.LMT != 3 {
		t.Errorf("step 1 head = %+v, want EMT 2, BL 12, LMT 3", tv)
	}
	// Step 4: t4 on p1 has EMT 5, BL 6, LMT 7; non-EP t5 has LMT 6.
	tv = steps[4].EPTasks[1][0]
	if tv.EMT != 5 || tv.BL != 6 || tv.LMT != 7 {
		t.Errorf("step 4 EP(p1) head = %+v, want EMT 5, BL 6, LMT 7", tv)
	}
	if lmt := steps[4].NonEP[0].LMT; lmt != 6 {
		t.Errorf("step 4 nonEP t5 LMT = %v, want 6", lmt)
	}
	// Step 7: t7[EMT 12; BL 2 / LMT 13].
	tv = steps[7].EPTasks[0][0]
	if tv.EMT != 12 || tv.BL != 2 || tv.LMT != 13 {
		t.Errorf("step 7 head = %+v, want EMT 12, BL 2, LMT 13", tv)
	}
}

func TestFormatTrace(t *testing.T) {
	g := workload.PaperExample()
	var steps []Step
	if _, err := Collect(&steps).Schedule(g, machine.NewSystem(2)); err != nil {
		t.Fatal(err)
	}
	out := FormatTrace(steps, nil)
	for _, want := range []string{
		"t3[2;12/3]",       // step 1 head of p0's EP list
		"t7[12;2/13]",      // final EP task
		"t7 -> p0 [12-14]", // final decision
		"non-EP tasks",
	} {
		if !contains(out, want) {
			t.Errorf("FormatTrace missing %q:\n%s", want, out)
		}
	}
	// Custom name function.
	out = FormatTrace(steps, func(id int) string { return "x" })
	if !contains(out, "x[2;12/3]") {
		t.Errorf("FormatTrace ignored name func:\n%s", out)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestFLBErrors(t *testing.T) {
	g := workload.PaperExample()
	if _, err := (FLB{}).Schedule(g, machine.System{P: 0}); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := (FLB{}).Schedule(graph.New("empty"), machine.NewSystem(2)); err != algo.ErrNoTasks {
		t.Errorf("empty graph error = %v, want ErrNoTasks", err)
	}
	cyc := graph.New("cyc")
	a, b := cyc.AddTask(1), cyc.AddTask(1)
	cyc.AddEdge(a, b, 1)
	cyc.AddEdge(b, a, 1)
	if _, err := (FLB{}).Schedule(cyc, machine.NewSystem(2)); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestFLBSingleProcessor(t *testing.T) {
	g := workload.LU(8)
	s, err := FLB{}.Schedule(g, machine.NewSystem(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// On one processor there is no idle time: makespan == total computation.
	if got, want := s.Makespan(), g.TotalComp(); math.Abs(got-want) > 1e-9 {
		t.Errorf("P=1 makespan = %v, want %v", got, want)
	}
}

func TestFLBIndependentTasksLoadBalance(t *testing.T) {
	// 8 unit tasks, 4 processors: perfect balance, makespan 2.
	g := workload.Independent(8)
	s, err := FLB{}.Schedule(g, machine.NewSystem(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != 2 {
		t.Errorf("makespan = %v, want 2", got)
	}
	for p := 0; p < 4; p++ {
		if got := len(s.TasksOn(p)); got != 2 {
			t.Errorf("processor %d has %d tasks, want 2", p, got)
		}
	}
}

func TestFLBChainStaysOnOneProcessor(t *testing.T) {
	g := workload.Chain(10)
	s, err := FLB{}.Schedule(g, machine.NewSystem(4))
	if err != nil {
		t.Fatal(err)
	}
	// Every task's only message comes from the previous task; moving away
	// would only add communication. FLB must keep the chain local.
	p0 := s.Proc(0)
	for t2 := 1; t2 < 10; t2++ {
		if s.Proc(t2) != p0 {
			t.Fatalf("chain split across processors: t%d on p%d", t2, s.Proc(t2))
		}
	}
	if got, want := s.Makespan(), g.TotalComp(); got != want {
		t.Errorf("chain makespan = %v, want %v", got, want)
	}
}

func TestFLBDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := workload.LayeredRandom(rng, 8, 6, 0.3)
	workload.RandomizeWeights(g, rng, nil, 1.0)
	sys := machine.NewSystem(4)
	a, err := FLB{}.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FLB{}.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < g.NumTasks(); id++ {
		if a.Proc(id) != b.Proc(id) || a.Start(id) != b.Start(id) {
			t.Fatalf("nondeterministic placement of task %d", id)
		}
	}
}

// scheduleValid is the per-workload validity harness.
func scheduleValid(t *testing.T, g *graph.Graph, procs ...int) {
	t.Helper()
	for _, p := range procs {
		s, err := FLB{}.Schedule(g, machine.NewSystem(p))
		if err != nil {
			t.Fatalf("%s P=%d: %v", g.Name, p, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s P=%d: %v", g.Name, p, err)
		}
	}
}

func TestFLBValidOnAllWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := []*graph.Graph{
		workload.PaperExample(),
		workload.LU(10),
		workload.Laplace(8),
		workload.Stencil(6, 7),
		workload.FFT(16),
		workload.OutTree(4, 2),
		workload.InTree(4, 2),
		workload.ForkJoin(3, 5),
		workload.Chain(12),
		workload.Independent(13),
		workload.LayeredRandom(rng, 6, 8, 0.25),
		workload.GNPDag(rng, 40, 0.15),
	}
	for _, g := range graphs {
		for _, ccr := range []float64{0, 0.2, 5.0} {
			gg := g.Clone()
			if ccr > 0 {
				workload.RandomizeWeights(gg, rng, nil, ccr)
			}
			scheduleValid(t, gg, 1, 2, 3, 7)
		}
	}
}

// minESTOracle returns the minimum EST over all ready tasks and all
// processors for the partial schedule s — ETF's (and per Theorem 3, FLB's)
// selection value, computed by brute force.
func minESTOracle(g *graph.Graph, s *schedule.Schedule, ready map[int]bool) float64 {
	best := math.Inf(1)
	for t := range ready {
		for p := 0; p < s.NumProcs(); p++ {
			if est := s.EST(t, p); est < best {
				best = est
			}
		}
	}
	return best
}

// TestFLBSelectsGlobalMinEST verifies the paper's Theorem 3 empirically:
// at every iteration, the task FLB schedules starts at the minimum EST
// over all (ready task, processor) pairs.
func TestFLBSelectsGlobalMinEST(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		var g *graph.Graph
		switch trial % 4 {
		case 0:
			g = workload.LayeredRandom(rng, 3+rng.Intn(5), 2+rng.Intn(6), 0.1+0.5*rng.Float64())
		case 1:
			g = workload.GNPDag(rng, 10+rng.Intn(30), 0.05+0.4*rng.Float64())
		case 2:
			g = workload.LU(3 + rng.Intn(7))
		case 3:
			g = workload.Stencil(2+rng.Intn(5), 2+rng.Intn(5))
		}
		workload.RandomizeWeights(g, rng, nil, []float64{0.2, 1, 5}[rng.Intn(3)])
		P := 1 + rng.Intn(5)

		var steps []Step
		_, err := Collect(&steps).Schedule(g, machine.NewSystem(P))
		if err != nil {
			t.Fatal(err)
		}

		// Replay the placements, checking the oracle before each one.
		replica := schedule.New(g, machine.NewSystem(P))
		rt := algo.NewReadyTracker(g)
		ready := map[int]bool{}
		for _, e := range rt.Initial() {
			ready[e] = true
		}
		for i, st := range steps {
			want := minESTOracle(g, replica, ready)
			if math.Abs(st.Start-want) > 1e-9 {
				t.Fatalf("trial %d (%s, P=%d) step %d: FLB started t%d at %v, oracle min EST %v",
					trial, g.Name, P, i, st.Task, st.Start, want)
			}
			if !ready[st.Task] {
				t.Fatalf("trial %d step %d: FLB scheduled non-ready task %d", trial, i, st.Task)
			}
			if got := replica.EST(st.Task, st.Proc); math.Abs(got-st.Start) > 1e-9 {
				t.Fatalf("trial %d step %d: start %v does not match EST %v on chosen proc",
					trial, i, st.Start, got)
			}
			replica.Place(st.Task, st.Proc, st.Start)
			delete(ready, st.Task)
			for _, nt := range rt.Complete(st.Task) {
				ready[nt] = true
			}
		}
		if err := replica.Validate(); err != nil {
			t.Fatalf("trial %d: replica invalid: %v", trial, err)
		}
	}
}

// TestFLBReadySetNeverExceedsWidth validates the paper's §2 claim that at
// any time the number of ready tasks never exceeds the graph width W.
func TestFLBReadySetNeverExceedsWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		g := workload.GNPDag(rng, 8+rng.Intn(25), 0.05+0.4*rng.Float64())
		w := g.Width()
		var steps []Step
		if _, err := Collect(&steps).Schedule(g, machine.NewSystem(1+rng.Intn(4))); err != nil {
			t.Fatal(err)
		}
		for i, st := range steps {
			readyCount := len(st.NonEP)
			for _, l := range st.EPTasks {
				readyCount += len(l)
			}
			if readyCount > w {
				t.Fatalf("trial %d step %d: %d ready tasks exceed width %d", trial, i, readyCount, w)
			}
		}
	}
}

func BenchmarkFLB_LU2000_P32(b *testing.B) {
	g, err := workload.Instance("lu", 2000, 1.0, nil, 1)
	if err != nil {
		b.Fatal(err)
	}
	sys := machine.NewSystem(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (FLB{}).Schedule(g, sys); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFLBAblationNames(t *testing.T) {
	cases := map[string]FLB{
		"FLB":            {},
		"FLB-nobl":       {NoBLTieBreak: true},
		"FLB-eptie":      {PreferEPOnTie: true},
		"FLB-nobl-eptie": {NoBLTieBreak: true, PreferEPOnTie: true},
	}
	for want, f := range cases {
		if got := f.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// TestFLBAblationsStillSelectGlobalMinEST: the ablation switches only
// change tie-breaking, so Theorem 3 (every placement achieves the global
// minimum EST) must keep holding for both.
func TestFLBAblationsStillSelectGlobalMinEST(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	variants := []FLB{{NoBLTieBreak: true}, {PreferEPOnTie: true}}
	for trial := 0; trial < 20; trial++ {
		g := workload.GNPDag(rng, 12+rng.Intn(20), 0.1+0.3*rng.Float64())
		workload.RandomizeWeights(g, rng, nil, 1.0)
		P := 1 + rng.Intn(4)
		for _, f := range variants {
			var steps []Step
			f.Sink = NewStepRecorder(&steps)
			if _, err := f.Schedule(g, machine.NewSystem(P)); err != nil {
				t.Fatal(err)
			}
			replica := schedule.New(g, machine.NewSystem(P))
			rt := algo.NewReadyTracker(g)
			ready := map[int]bool{}
			for _, e := range rt.Initial() {
				ready[e] = true
			}
			for i, st := range steps {
				want := minESTOracle(g, replica, ready)
				if math.Abs(st.Start-want) > 1e-9 {
					t.Fatalf("%s trial %d step %d: start %v, oracle %v",
						f.Name(), trial, i, st.Start, want)
				}
				replica.Place(st.Task, st.Proc, st.Start)
				delete(ready, st.Task)
				for _, nt := range rt.Complete(st.Task) {
					ready[nt] = true
				}
			}
		}
	}
}

// TestFLBAblationChangesTable1: on the paper example, disabling the
// bottom-level tie-break changes step 1 (t3/t1/t2 all tie on EMT 2; paper
// picks t3 by BL, ID order picks t1), demonstrating the switch works.
func TestFLBAblationChangesTable1(t *testing.T) {
	g := workload.PaperExample()
	s, err := FLB{NoBLTieBreak: true}.Schedule(g, machine.NewSystem(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// With ID-order ties, the second placement is t1, not t3.
	if got := s.PlacementOrder()[1]; got != 1 {
		t.Errorf("second placement = t%d, want t1 under ID ties", got)
	}
}
