package core

import (
	"fmt"
	"sort"
	"strings"

	"flb/internal/machine"
)

// TaskView is the trace's snapshot of one queued ready task — the values
// the paper prints in Table 1.
type TaskView struct {
	Task int
	// EMT is the effective message arrival time on the task's enabling
	// processor (meaningful for EP-type tasks).
	EMT float64
	// LMT is the last message arrival time.
	LMT float64
	// BL is the static bottom level (the tie-breaking priority).
	BL float64
}

// Step is the trace record of one FLB iteration: the ready lists as they
// stood when the decision was taken, plus the decision itself. It carries
// exactly the columns of the paper's Table 1.
type Step struct {
	// Iter numbers the iteration from 0.
	Iter int
	// EPTasks[p] lists the EP-type tasks enabled by processor p in EMT
	// order (the order of the paper's EMT_EP_task_l columns).
	EPTasks [][]TaskView
	// NonEP lists the non-EP-type tasks in LMT order.
	NonEP []TaskView
	// Task, Proc, Start and Finish describe the placement performed.
	Task   int
	Proc   machine.Proc
	Start  float64
	Finish float64
}

// snapshot captures the current ready lists and the pending decision.
//
//flb:exact trace ordering mirrors the heaps' exact lexicographic comparators so Table 1 rows match the pop order
func (st *flbState) snapshot(task int, proc machine.Proc, est float64) Step {
	step := Step{
		Iter:    st.s.Graph().NumTasks(), // replaced below; placed count works too
		EPTasks: make([][]TaskView, st.sys.P),
		Task:    task,
		Proc:    proc,
		Start:   est,
		Finish:  est + st.g.Comp(task),
	}
	iter := 0
	for t := 0; t < st.g.NumTasks(); t++ {
		if st.s.Assigned(t) {
			iter++
		}
	}
	step.Iter = iter
	view := func(t int) TaskView {
		return TaskView{Task: t, EMT: st.emt[t], LMT: st.lmt[t], BL: st.bl[t]}
	}
	for p := 0; p < st.sys.P; p++ {
		ids := st.emtEP[p].Items()
		sort.Slice(ids, func(i, j int) bool {
			a, b := ids[i], ids[j]
			if st.emt[a] != st.emt[b] {
				return st.emt[a] < st.emt[b]
			}
			if st.bl[a] != st.bl[b] {
				return st.bl[a] > st.bl[b]
			}
			return a < b
		})
		for _, t := range ids {
			step.EPTasks[p] = append(step.EPTasks[p], view(t))
		}
	}
	ids := st.nonEP.Items()
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if st.lmt[a] != st.lmt[b] {
			return st.lmt[a] < st.lmt[b]
		}
		if st.bl[a] != st.bl[b] {
			return st.bl[a] > st.bl[b]
		}
		return a < b
	})
	for _, t := range ids {
		step.NonEP = append(step.NonEP, view(t))
	}
	return step
}

// Collect returns an FLB whose OnStep appends every Step to the returned
// slice pointer — the convenient way to record a full trace.
func Collect(steps *[]Step) FLB {
	return FLB{OnStep: func(s Step) { *steps = append(*steps, s) }}
}

// FormatTrace renders steps in the layout of the paper's Table 1: one row
// per iteration with the per-processor EP lists
// (task[EMT;BL/LMT]), the non-EP list (task[LMT]) and the placement.
// names maps task IDs to display names (nil means tN).
func FormatTrace(steps []Step, names func(int) string) string {
	if names == nil {
		names = func(t int) string { return fmt.Sprintf("t%d", t) }
	}
	var b strings.Builder
	nprocs := 0
	if len(steps) > 0 {
		nprocs = len(steps[0].EPTasks)
	}
	for p := 0; p < nprocs; p++ {
		fmt.Fprintf(&b, "%-28s| ", fmt.Sprintf("EP tasks on p%d", p))
	}
	fmt.Fprintf(&b, "%-22s| %s\n", "non-EP tasks", "scheduling")
	for _, s := range steps {
		for p := 0; p < nprocs; p++ {
			var cells []string
			for _, tv := range s.EPTasks[p] {
				cells = append(cells, fmt.Sprintf("%s[%g;%g/%g]", names(tv.Task), tv.EMT, tv.BL, tv.LMT))
			}
			cell := strings.Join(cells, " ")
			if cell == "" {
				cell = "-"
			}
			fmt.Fprintf(&b, "%-28s| ", cell)
		}
		var cells []string
		for _, tv := range s.NonEP {
			cells = append(cells, fmt.Sprintf("%s[%g]", names(tv.Task), tv.LMT))
		}
		cell := strings.Join(cells, " ")
		if cell == "" {
			cell = "-"
		}
		fmt.Fprintf(&b, "%-22s| %s -> p%d [%g-%g]\n", cell, names(s.Task), s.Proc, s.Start, s.Finish)
	}
	return b.String()
}
