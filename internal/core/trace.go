package core

import (
	"fmt"
	"sort"
	"strings"

	"flb/internal/machine"
	"flb/internal/obs"
)

// TaskView is the trace's snapshot of one queued ready task — the values
// the paper prints in Table 1.
type TaskView struct {
	Task int
	// EMT is the effective message arrival time on the task's enabling
	// processor (meaningful for EP-type tasks).
	EMT float64
	// LMT is the last message arrival time.
	LMT float64
	// BL is the static bottom level (the tie-breaking priority).
	BL float64
}

// Step is the trace record of one FLB iteration: the ready lists as they
// stood when the decision was taken, plus the decision itself. It carries
// exactly the columns of the paper's Table 1.
type Step struct {
	// Iter numbers the iteration from 0.
	Iter int
	// EPTasks[p] lists the EP-type tasks enabled by processor p in EMT
	// order (the order of the paper's EMT_EP_task_l columns).
	EPTasks [][]TaskView
	// NonEP lists the non-EP-type tasks in LMT order.
	NonEP []TaskView
	// Task, Proc, Start and Finish describe the placement performed.
	Task   int
	Proc   machine.Proc
	Start  float64
	Finish float64
}

// StepRecorder is the obs.Sink that reconstructs the paper's Table 1 rows
// from the scheduler's event stream: it mirrors the ready lists through
// obs.TaskReady and obs.TaskDemoted transitions and emits one Step per
// obs.SchedStep decision. It replaces the snapshot path the scheduler used
// to carry inline — the hot loop now publishes events and this sink pays
// the allocation cost of materializing list snapshots.
type StepRecorder struct {
	obs.NopSink
	steps *[]Step

	iter  int
	ep    [][]int // per proc: EP-type ready tasks, unordered
	nonEP []int   // non-EP-type ready tasks, unordered

	// Last observed per-task values. A demoted task keeps the EMT it had
	// as an EP-type task — exactly what the paper's table prints.
	lmt, emt, bl []float64
}

// NewStepRecorder returns a sink appending one Step per scheduling
// decision to *steps.
func NewStepRecorder(steps *[]Step) *StepRecorder {
	return &StepRecorder{steps: steps}
}

// Begin resets the mirrored ready lists for a new run.
func (sr *StepRecorder) Begin(e obs.Begin) {
	if e.Kind != obs.KindSchedule {
		return
	}
	sr.iter = 0
	if cap(sr.ep) < e.Procs {
		sr.ep = make([][]int, e.Procs)
	} else {
		sr.ep = sr.ep[:e.Procs]
	}
	for p := range sr.ep {
		sr.ep[p] = sr.ep[p][:0]
	}
	sr.nonEP = sr.nonEP[:0]
	sr.lmt = growFloat(sr.lmt, e.Tasks)
	sr.emt = growFloat(sr.emt, e.Tasks)
	sr.bl = growFloat(sr.bl, e.Tasks)
}

// TaskReady files the task into the mirrored list its classification
// selects.
func (sr *StepRecorder) TaskReady(e obs.TaskReady) {
	sr.lmt[e.Task] = e.LMT
	sr.emt[e.Task] = e.EMT
	sr.bl[e.Task] = e.BL
	if e.IsEP {
		sr.ep[e.EP] = append(sr.ep[e.EP], e.Task)
	} else {
		sr.nonEP = append(sr.nonEP, e.Task)
	}
}

// TaskDemoted moves the task to the non-EP mirror, retaining its EP-era
// EMT.
func (sr *StepRecorder) TaskDemoted(e obs.TaskDemoted) {
	sr.ep[e.Proc] = remove(sr.ep[e.Proc], e.Task)
	sr.nonEP = append(sr.nonEP, e.Task)
}

// SchedStep materializes one Table 1 row from the mirrored lists, then
// removes the placed task.
//
//flb:exact trace ordering mirrors the heaps' exact lexicographic comparators so Table 1 rows match the pop order
func (sr *StepRecorder) SchedStep(e obs.SchedStep) {
	step := Step{
		Iter:    sr.iter,
		EPTasks: make([][]TaskView, len(sr.ep)),
		Task:    e.Task,
		Proc:    machine.Proc(e.Proc),
		Start:   e.Start,
		Finish:  e.Finish,
	}
	sr.iter++
	for p, ids := range sr.ep {
		ids := append([]int(nil), ids...)
		sort.Slice(ids, func(i, j int) bool {
			a, b := ids[i], ids[j]
			if sr.emt[a] != sr.emt[b] {
				return sr.emt[a] < sr.emt[b]
			}
			if sr.bl[a] != sr.bl[b] {
				return sr.bl[a] > sr.bl[b]
			}
			return a < b
		})
		for _, t := range ids {
			step.EPTasks[p] = append(step.EPTasks[p], sr.view(t))
		}
	}
	ids := append([]int(nil), sr.nonEP...)
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if sr.lmt[a] != sr.lmt[b] {
			return sr.lmt[a] < sr.lmt[b]
		}
		if sr.bl[a] != sr.bl[b] {
			return sr.bl[a] > sr.bl[b]
		}
		return a < b
	})
	for _, t := range ids {
		step.NonEP = append(step.NonEP, sr.view(t))
	}
	*sr.steps = append(*sr.steps, step)

	if e.ChoseEP {
		sr.ep[e.Proc] = remove(sr.ep[e.Proc], e.Task)
	} else {
		sr.nonEP = remove(sr.nonEP, e.Task)
	}
}

func (sr *StepRecorder) view(t int) TaskView {
	return TaskView{Task: t, EMT: sr.emt[t], LMT: sr.lmt[t], BL: sr.bl[t]}
}

// remove deletes the first occurrence of t from ids, preserving order.
func remove(ids []int, t int) []int {
	for i, v := range ids {
		if v == t {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// Collect returns an FLB whose Sink appends every decision as a Step to
// the slice pointer — the convenient way to record a full Table 1 trace.
func Collect(steps *[]Step) FLB {
	return FLB{Sink: NewStepRecorder(steps)}
}

// FormatTrace renders steps in the layout of the paper's Table 1: one row
// per iteration with the per-processor EP lists
// (task[EMT;BL/LMT]), the non-EP list (task[LMT]) and the placement.
// names maps task IDs to display names (nil means tN).
func FormatTrace(steps []Step, names func(int) string) string {
	if names == nil {
		names = func(t int) string { return fmt.Sprintf("t%d", t) }
	}
	var b strings.Builder
	nprocs := 0
	if len(steps) > 0 {
		nprocs = len(steps[0].EPTasks)
	}
	for p := 0; p < nprocs; p++ {
		fmt.Fprintf(&b, "%-28s| ", fmt.Sprintf("EP tasks on p%d", p))
	}
	fmt.Fprintf(&b, "%-22s| %s\n", "non-EP tasks", "scheduling")
	for _, s := range steps {
		for p := 0; p < nprocs; p++ {
			var cells []string
			for _, tv := range s.EPTasks[p] {
				cells = append(cells, fmt.Sprintf("%s[%g;%g/%g]", names(tv.Task), tv.EMT, tv.BL, tv.LMT))
			}
			cell := strings.Join(cells, " ")
			if cell == "" {
				cell = "-"
			}
			fmt.Fprintf(&b, "%-28s| ", cell)
		}
		var cells []string
		for _, tv := range s.NonEP {
			cells = append(cells, fmt.Sprintf("%s[%g]", names(tv.Task), tv.LMT))
		}
		cell := strings.Join(cells, " ")
		if cell == "" {
			cell = "-"
		}
		fmt.Fprintf(&b, "%-22s| %s -> p%d [%g-%g]\n", cell, names(s.Task), s.Proc, s.Start, s.Finish)
	}
	return b.String()
}
