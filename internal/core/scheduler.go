package core

import (
	"sync"

	"flb/internal/algo"
	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/obs"
	"flb/internal/schedule"
)

// statePool recycles FLB working arenas across the stateless
// FLB.Schedule entry point, so a service scheduling many graphs (or a
// benchmark loop) re-allocates neither heaps nor scratch arrays. Arenas
// grow monotonically to the largest (V, P) they have seen.
var statePool = sync.Pool{New: func() any { return new(flbState) }}

// Scheduler is a reusable FLB arena for callers that schedule in a tight
// loop and can accept a stronger aliasing contract than the stateless
// FLB.Schedule: the returned schedule is owned by the Scheduler and valid
// only until the next Schedule call, and all scratch state (heaps, ready
// tracker, per-task arrays, the output schedule) is reused across calls.
// On frozen graphs the steady-state cost is zero heap allocations.
//
// A Scheduler is not safe for concurrent use; use one per goroutine (the
// bench harness keeps one per worker).
type Scheduler struct {
	cfg FLB
	st  flbState
	out *schedule.Schedule
}

// NewScheduler returns an empty arena running cfg's FLB variant.
func NewScheduler(cfg FLB) *Scheduler {
	return &Scheduler{cfg: cfg}
}

// Name returns the configured variant's display name.
func (sc *Scheduler) Name() string { return sc.cfg.Name() }

// Schedule maps every task of g onto sys, producing the same schedule as
// FLB.Schedule with sc's configuration. The returned schedule is reused:
// it is valid only until the next call on this Scheduler. Callers that
// need to keep it should Clone it.
func (sc *Scheduler) Schedule(g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	if err := algo.CheckInputs(g, sys); err != nil {
		return nil, err
	}
	if sc.out == nil {
		sc.out = schedule.New(g, sys)
	} else {
		sc.out.Reset(g, sys)
	}
	sc.out.Algorithm = sc.cfg.Name()
	sc.st.reset(sc.cfg, g, sys, sc.out)
	sc.st.run()
	return sc.out, nil
}

// Observe sets the sink receiving the decision trace of subsequent
// Schedule calls; nil disables observability (the zero-allocation path).
func (sc *Scheduler) Observe(s obs.Sink) { sc.cfg.Sink = s }
