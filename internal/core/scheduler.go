package core

import (
	"context"
	"fmt"
	"sync"

	"flb/internal/algo"
	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/obs"
	"flb/internal/pq"
	"flb/internal/schedule"
)

// statePool recycles FLB working arenas across the stateless
// FLB.Schedule entry point, so a service scheduling many graphs (or a
// benchmark loop) re-allocates neither heaps nor scratch arrays. Arenas
// grow monotonically to the largest (V, P) they have seen.
var statePool = sync.Pool{New: func() any { return new(flbState) }}

// Scheduler is a reusable FLB arena for callers that schedule in a tight
// loop and can accept a stronger aliasing contract than the stateless
// FLB.Schedule: the returned schedule is owned by the Scheduler and valid
// only until the next Schedule call, and all scratch state (heaps, ready
// tracker, per-task arrays, the output schedule) is reused across calls.
// On frozen graphs the steady-state cost is zero heap allocations.
//
// A Scheduler is not safe for concurrent use; use one per goroutine (the
// bench harness keeps one per worker).
type Scheduler struct {
	cfg FLB
	st  flbState
	out *schedule.Schedule
}

// NewScheduler returns an empty arena running cfg's FLB variant.
func NewScheduler(cfg FLB) *Scheduler {
	return &Scheduler{cfg: cfg}
}

// Name returns the configured variant's display name.
func (sc *Scheduler) Name() string { return sc.cfg.Name() }

// Schedule maps every task of g onto sys, producing the same schedule as
// FLB.Schedule with sc's configuration. The returned schedule is reused:
// it is valid only until the next call on this Scheduler. Callers that
// need to keep it should Clone it.
func (sc *Scheduler) Schedule(g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	return sc.scheduleCtx(nil, g, sys)
}

// ScheduleContext is Schedule with cooperative cancellation, mirroring
// FLB.ScheduleContext: the run loop polls ctx every 4096 placements and
// aborts with a wrapped ctx.Err(). On abort the arena's reused output
// schedule holds a partial placement and must not be read; the next
// Schedule call resets it. A nil ctx behaves exactly like Schedule.
func (sc *Scheduler) ScheduleContext(ctx context.Context, g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	return sc.scheduleCtx(ctx, g, sys)
}

func (sc *Scheduler) scheduleCtx(ctx context.Context, g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	if err := algo.CheckInputs(g, sys); err != nil {
		return nil, err
	}
	if sc.out == nil {
		sc.out = schedule.New(g, sys)
	} else {
		sc.out.Reset(g, sys)
	}
	sc.out.Algorithm = sc.cfg.Name()
	sc.st.reset(sc.cfg, g, sys, sc.out)
	sc.st.ctx = ctx
	err := sc.st.run()
	sc.st.ctx = nil
	if err != nil {
		return nil, fmt.Errorf("core: FLB scheduling aborted: %w", err)
	}
	return sc.out, nil
}

// Grow pre-sizes the arena for graphs of up to v tasks on systems of up
// to p processors, so a subsequent Schedule call performs its growth
// allocations here instead of interleaved with the scheduling loop —
// at million-task scale that keeps the measured schedule phase free of
// tens of megabytes of demand growth. Sizing is advisory: larger inputs
// still grow the arena on demand, and the output schedule (sized by the
// first scheduled (graph, system) pair) is not covered.
func (sc *Scheduler) Grow(v, p int) {
	sc.st.grow(v, p)
}

// grow pre-extends every capacity-carrying slice and heap of the arena to
// (v tasks, p processors). reset then finds sufficient capacity and
// allocates nothing.
func (st *flbState) grow(v, p int) {
	st.lmt = growFloat(st.lmt, v)
	st.emt = growFloat(st.emt, v)
	st.ep = growProc(st.ep, v)
	st.emtPos = pq.GrowPos(st.emtPos, v)
	st.lmtPos = pq.GrowPos(st.lmtPos, v)
	if cap(st.emtEP) < p {
		emt := make([]pq.Heap, p)
		lmt := make([]pq.Heap, p)
		copy(emt, st.emtEP)
		copy(lmt, st.lmtEP)
		st.emtEP, st.lmtEP = emt, lmt
	}
	st.nonEP.Grow(v)
	st.active.Grow(p)
	st.all.Grow(p)
	st.ready.Grow(v)
}

// Observe sets the sink receiving the decision trace of subsequent
// Schedule calls; nil disables observability (the zero-allocation path).
func (sc *Scheduler) Observe(s obs.Sink) { sc.cfg.Sink = s }
