package core

import (
	"math/rand"
	"strings"
	"testing"

	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/schedule"
	"flb/internal/workload"
)

// replanProblem builds a frozen random DAG, its cold FLB schedule, and a
// weight-drifted variant touching only tasks at placement positions >= k.
func replanProblem(t *testing.T, seed int64, n, procs, k int) (*graph.Graph, machine.System, *schedule.Schedule, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := workload.GNPDag(rng, n, 0.25)
	workload.RandomizeWeights(g, rng, nil, 1)
	g.Freeze()
	sys := machine.NewSystem(procs)
	base, err := NewScheduler(FLB{}).Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	drifted := g.Clone()
	for _, tk := range base.PlacementOrder()[k:] {
		drifted.SetComp(tk, g.Comp(tk)*1.5)
	}
	drifted.Freeze()
	return g, sys, base, drifted
}

func replanBytes(t *testing.T, s *schedule.Schedule) string {
	t.Helper()
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestReplanSuffixPrefixReplay: positions < k replay base bit-identically
// (task, processor, start), the rest are replanned into a valid schedule.
func TestReplanSuffixPrefixReplay(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		_, sys, base, drifted := replanProblem(t, seed, 40, 4, 20)
		re := NewRescheduler()
		s, err := re.ReplanSuffix(drifted, sys, base, 20)
		if err != nil {
			t.Fatal(err)
		}
		if s.Algorithm != "flb-nearhit" {
			t.Fatalf("seed %d: labeled %q, want flb-nearhit", seed, s.Algorithm)
		}
		order := base.PlacementOrder()
		for i, tk := range order[:20] {
			if s.Proc(tk) != base.Proc(tk) || s.Start(tk) != base.Start(tk) {
				t.Errorf("seed %d: replayed position %d (task %d) drifted: proc %d@%g, want %d@%g",
					seed, i, tk, s.Proc(tk), s.Start(tk), base.Proc(tk), base.Start(tk))
			}
		}
		if got := len(s.PlacementOrder()); got != len(order) {
			t.Fatalf("seed %d: replan placed %d of %d tasks", seed, got, len(order))
		}
		if err := s.Validate(); err != nil {
			t.Errorf("seed %d: replanned schedule invalid: %v", seed, err)
		}
	}
}

// TestReplanSuffixDeterministic: any two arenas (fresh or reused) produce
// bit-identical replans — the property the cache's byte-stability
// contract rides on.
func TestReplanSuffixDeterministic(t *testing.T) {
	_, sys, base, drifted := replanProblem(t, 3, 50, 4, 25)
	r1 := NewRescheduler()
	s1, err := r1.ReplanSuffix(drifted, sys, base, 25)
	if err != nil {
		t.Fatal(err)
	}
	want := replanBytes(t, s1.Clone())
	// A fresh arena.
	s2, err := NewRescheduler().ReplanSuffix(drifted, sys, base, 25)
	if err != nil {
		t.Fatal(err)
	}
	if replanBytes(t, s2) != want {
		t.Errorf("fresh arena replans differently")
	}
	// The same arena again (history independence).
	s3, err := r1.ReplanSuffix(drifted, sys, base, 25)
	if err != nil {
		t.Fatal(err)
	}
	if replanBytes(t, s3) != want {
		t.Errorf("reused arena replans differently")
	}
}

// TestReplanSuffixFullReplay: k = n replays the whole base schedule.
func TestReplanSuffixFullReplay(t *testing.T) {
	g, sys, base, _ := replanProblem(t, 4, 30, 3, 30)
	s, err := NewRescheduler().ReplanSuffix(g, sys, base, g.NumTasks())
	if err != nil {
		t.Fatal(err)
	}
	for tk := 0; tk < g.NumTasks(); tk++ {
		if s.Proc(tk) != base.Proc(tk) || s.Start(tk) != base.Start(tk) {
			t.Fatalf("full replay drifted at task %d", tk)
		}
	}
}

func TestReplanSuffixErrors(t *testing.T) {
	g, sys, base, drifted := replanProblem(t, 5, 30, 3, 15)
	re := NewRescheduler()
	if _, err := re.ReplanSuffix(drifted, sys, base, -1); err == nil {
		t.Errorf("negative k accepted")
	}
	if _, err := re.ReplanSuffix(drifted, sys, base, g.NumTasks()+1); err == nil {
		t.Errorf("k beyond the task count accepted")
	}
	if _, err := re.ReplanSuffix(drifted, machine.NewSystem(5), base, 15); err == nil {
		t.Errorf("processor-count mismatch accepted")
	}
	bigger := graph.New("bigger")
	for i := 0; i < g.NumTasks()+1; i++ {
		bigger.AddTask(1)
	}
	bigger.Freeze()
	if _, err := re.ReplanSuffix(bigger, sys, base, 0); err == nil {
		t.Errorf("task-count mismatch accepted")
	}
}
