// Package core implements FLB (Fast Load Balancing), the compile-time
// list-scheduling algorithm of Rădulescu & van Gemund (ICPP 1999) — the
// primary contribution of the reproduced paper.
//
// At each iteration FLB schedules the ready task that can start the
// earliest, on the processor where that start time is achieved — the same
// criterion as ETF — in O(V(log W + log P) + E) total time instead of
// ETF's O(W(E+V)P). The key insight (paper Theorem 3) is that the globally
// earliest-starting ready task is always one of just two candidates:
//
//   - the EP-type task with minimum estimated start time on its enabling
//     processor (the processor its last message arrives from), and
//   - the non-EP-type task with minimum last message arrival time, placed
//     on the processor becoming idle the earliest.
//
// A ready task t is of type EP when LMT(t) >= PRT(EP(t)): its last message
// arrives no earlier than its enabling processor becomes idle, so it
// starts earliest there (the message cost is zeroed). Otherwise the task
// cannot start before LMT(t) on any processor, so the earliest-idle
// processor is optimal.
//
// The implementation follows the paper's pseudocode (§4.1): two per-
// processor heaps of EP tasks (keyed by EMT and LMT respectively), a
// global heap of non-EP tasks (keyed by LMT), a heap of active processors
// (keyed by the EST of their best EP task) and a heap of all processors
// (keyed by PRT). All task-level ties break on larger bottom level — "the
// task with the longest path to any exit task" — then smaller task ID.
//
// All of the algorithm's working state lives in a reusable arena
// (Scheduler); the stateless FLB.Schedule entry point draws arenas from a
// sync.Pool, so its steady-state cost is the fresh output Schedule plus
// O(log) heap work — no per-run heap, tracker or level allocations.
//
// # Uniformly related machines
//
// When the system carries at least two distinct speed factors
// (machine.System.Heterogeneous), the selection criterion generalizes
// from earliest start time to earliest finish time: EFT(t,p) =
// max(EMT/LMT, PRT(p)) + w(t)/speed(p). Starts alone can no longer rank
// processors — a slow processor often offers the earliest start but a
// late finish. Two structures change (DESIGN.md §16):
//
//   - the active-processor heap is keyed by the EFT (not EST) of each
//     processor's head EP task, and the EP-vs-non-EP comparison is on
//     EFT, keeping the paper's non-EP-wins-ties rule;
//   - the all-processors PRT heap is split into one PRT heap per *speed
//     class* (processors sharing a speed factor). Within a class the
//     earliest-idle processor still minimizes EFT, so the best non-EP
//     placement is argmin over classes of max(LMT, PRT(head_c)) + w/s_c —
//     K = #classes heap peeks instead of a P-way scan, preserving the
//     paper's complexity with a +K term per iteration.
//
// The per-processor EP heaps keep their EMT ordering: on one processor
// every task shares a speed, but distinct weights mean the head-by-EMT
// choice is a heuristic rather than exact under heterogeneity (§16
// discusses why this is acceptable). With fewer than two distinct speeds
// the arena takes the homogeneous decision path — bit-identical to the
// seed implementation — and only the execution times divide by speed.
package core

import (
	"context"
	"fmt"
	"math"

	"flb/internal/algo"
	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/obs"
	"flb/internal/pq"
	"flb/internal/schedule"
)

// FLB is the Fast Load Balancing scheduler. The zero value is the paper's
// configuration; the ablation switches disable individual design choices
// the paper motivates (§4, §6.2) so their contribution can be measured
// (see BenchmarkAblation* and the tie-breaking discussion in DESIGN.md).
type FLB struct {
	// Sink, when non-nil, receives the decision trace: one obs.SchedStep
	// per iteration (the paper's ScheduleTask comparison) plus
	// obs.TaskReady / obs.TaskDemoted list transitions. A nil Sink costs
	// one predictable branch per event site and keeps the hot path at
	// zero allocations (DESIGN.md §11). Capture the paper's Table 1 with
	// a StepRecorder (see Collect).
	Sink obs.Sink

	// NoBLTieBreak disables the bottom-level tie-breaking ("the task with
	// the longest path to any exit task", §4.1); ties then fall through to
	// task IDs. The paper credits FLB's edge over ETF to its dynamic
	// priorities with this static refinement (§6.2).
	NoBLTieBreak bool

	// PreferEPOnTie inverts the paper's rule that on equal earliest start
	// times the non-EP task wins (its communication is already overlapped
	// with computation, §4.1).
	PreferEPOnTie bool
}

// Name implements the Algorithm interface.
func (f FLB) Name() string {
	name := "FLB"
	if f.NoBLTieBreak {
		name += "-nobl"
	}
	if f.PreferEPOnTie {
		name += "-eptie"
	}
	return name
}

// Schedule implements the Algorithm interface. It is stateless from the
// caller's perspective — the returned schedule is caller-owned — but
// internally draws its working arena from a pool, so repeated calls do
// not re-allocate heaps, trackers or scratch arrays.
func (f FLB) Schedule(g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	return f.scheduleCtx(nil, g, sys)
}

// ScheduleContext is Schedule with cooperative cancellation: the run loop
// polls ctx every 4096 placements (a few hundred microseconds of work at
// million-task scale) and aborts with ctx.Err() — wrapped, so errors.Is
// against context.Canceled / context.DeadlineExceeded holds — discarding
// the partial schedule. A nil ctx behaves exactly like Schedule. The poll
// sits outside the per-placement hot path, so schedules produced under a
// never-canceled context are bit-identical to Schedule's.
func (f FLB) ScheduleContext(ctx context.Context, g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	return f.scheduleCtx(ctx, g, sys)
}

func (f FLB) scheduleCtx(ctx context.Context, g *graph.Graph, sys machine.System) (*schedule.Schedule, error) {
	if err := algo.CheckInputs(g, sys); err != nil {
		return nil, err
	}
	st := statePool.Get().(*flbState)
	s := schedule.New(g, sys)
	s.Algorithm = f.Name()
	st.reset(f, g, sys, s)
	st.ctx = ctx
	err := st.run()
	st.release()
	statePool.Put(st)
	if err != nil {
		return nil, fmt.Errorf("core: FLB scheduling aborted: %w", err)
	}
	return s, nil
}

// flbState carries the paper's data structures through one run. It is the
// reusable scratch arena: reset re-targets every slice and heap at a new
// (graph, system) pair without reallocating when capacities suffice.
type flbState struct {
	g   *graph.Graph
	sys machine.System
	s   *schedule.Schedule
	ctx context.Context // non-nil only under ScheduleContext; polled every 4096 placements

	bl       []float64 // static bottom levels, tie-breaking priority
	noBL     bool      // ablation: ignore bottom levels in tie-breaking
	preferEP bool      // ablation: prefer the EP candidate on start ties
	sink     obs.Sink  // nil = observability disabled (the fast path)

	// Per ready task, fixed once the task becomes ready:
	lmt []float64      // last message arrival time
	emt []float64      // effective message arrival time on the enabling proc
	ep  []machine.Proc // enabling processor (-1 for entry tasks)

	// A task is enabled by exactly one processor, so the per-processor EP
	// heaps share one position store per key kind, keeping memory at
	// O(V + P) instead of O(P*V).
	emtPos []int
	lmtPos []int

	emtEP  []pq.Heap // per proc: EP tasks keyed by (EMT, -BL)
	lmtEP  []pq.Heap // per proc: EP tasks keyed by (LMT, -BL)
	nonEP  pq.Heap   // non-EP tasks keyed by (LMT, -BL)
	active pq.Heap   // active procs keyed by (EST/EFT of head EP task, -BL(head))
	all    pq.Heap   // all procs keyed by (PRT); homogeneous path only

	// Related-machines state (hetero only). Processors are partitioned
	// into speed classes; the non-EP processor choice minimizes EFT over
	// the per-class earliest-idle processors instead of peeking `all`.
	hetero bool
	//flb:keep fully rebuilt by buildClasses on heterogeneous runs; never read on homogeneous ones
	classSpeed []float64 // distinct speed factors, descending
	//flb:keep fully rebuilt by buildClasses on heterogeneous runs; never read on homogeneous ones
	classOf []int // per proc: index into classSpeed
	//flb:keep re-sized by buildClasses, then reset by each class heap's Init on heterogeneous runs
	classPos []int // shared position store of the class heaps
	//flb:keep fully rebuilt by buildClasses on heterogeneous runs; never read on homogeneous ones
	classPRT []pq.Heap // per class: procs keyed by (PRT)

	ready algo.ReadyTracker
}

// reset prepares the arena for one run of f over g on sys, writing the
// placements into s. With sufficient capacity from a previous run it
// performs no allocations (bottom levels come memoized from the graph).
func (st *flbState) reset(f FLB, g *graph.Graph, sys machine.System, s *schedule.Schedule) {
	n, p := g.NumTasks(), sys.P
	st.g, st.sys, st.s = g, sys, s
	st.ctx = nil // entry points opt in after reset

	st.bl = g.BottomLevels()
	st.noBL, st.preferEP = f.NoBLTieBreak, f.PreferEPOnTie
	st.sink = f.Sink
	st.lmt = growFloat(st.lmt, n)
	st.emt = growFloat(st.emt, n)
	clear(st.lmt)
	clear(st.emt)
	st.ep = growProc(st.ep, n)
	for i := range st.ep {
		st.ep[i] = -1
	}
	st.emtPos = pq.GrowPos(st.emtPos, n)
	st.lmtPos = pq.GrowPos(st.lmtPos, n)
	if cap(st.emtEP) < p {
		emt := make([]pq.Heap, p)
		lmt := make([]pq.Heap, p)
		copy(emt, st.emtEP)
		copy(lmt, st.lmtEP)
		st.emtEP, st.lmtEP = emt, lmt
	} else {
		st.emtEP = st.emtEP[:p]
		st.lmtEP = st.lmtEP[:p]
	}
	for i := 0; i < p; i++ {
		st.emtEP[i].Init(st.emtPos)
		st.lmtEP[i].Init(st.lmtPos)
	}
	st.nonEP.Grow(n)
	st.active.Grow(p)
	st.all.Grow(p)
	st.hetero = sys.Heterogeneous()
	if st.hetero {
		st.buildClasses(p)
	}
	st.ready.Reset(g)
}

// buildClasses partitions the processors of a related machine into speed
// classes: classSpeed holds the distinct speed factors in descending
// order (faster classes first, so EFT ties across classes resolve toward
// the faster processor), classOf maps each processor to its class, and
// classPRT holds one empty PRT-keyed heap per class. Runs at reset time;
// with sufficient capacity from a previous run it performs no
// allocations.
func (st *flbState) buildClasses(p int) {
	st.classSpeed = st.classSpeed[:0]
	for i := 0; i < p; i++ {
		sp := st.sys.Speeds[i]
		seen := false
		for _, cs := range st.classSpeed {
			if cs == sp { //flb:exact class membership is exact speed equality, matching Heterogeneous()
				seen = true
				break
			}
		}
		if !seen {
			st.classSpeed = append(st.classSpeed, sp)
		}
	}
	// Insertion sort, descending: K is tiny (K <= P, typically a handful).
	for i := 1; i < len(st.classSpeed); i++ {
		v := st.classSpeed[i]
		j := i - 1
		for j >= 0 && st.classSpeed[j] < v {
			st.classSpeed[j+1] = st.classSpeed[j]
			j--
		}
		st.classSpeed[j+1] = v
	}
	k := len(st.classSpeed)
	st.classOf = growInt(st.classOf, p)
	for i := 0; i < p; i++ {
		for c := 0; c < k; c++ {
			if st.classSpeed[c] == st.sys.Speeds[i] { //flb:exact see above
				st.classOf[i] = c
				break
			}
		}
	}
	st.classPos = pq.GrowPos(st.classPos, p)
	if cap(st.classPRT) < k {
		st.classPRT = make([]pq.Heap, k)
	} else {
		st.classPRT = st.classPRT[:k]
	}
	for c := 0; c < k; c++ {
		st.classPRT[c].Init(st.classPos)
	}
}

// release drops the references tying the arena to the last run's graph
// and caller-owned schedule, so a pooled arena does not keep them alive.
func (st *flbState) release() {
	st.g = nil
	st.s = nil
	st.bl = nil
	st.sink = nil
	st.ctx = nil
}

// run executes the scheduling loop. The arena must be reset first. The
// only error it can return is a pending st.ctx error (cancellation or an
// exceeded deadline), observed at most 4096 placements after it occurs;
// with a nil ctx it cannot fail.
//
//flb:hotpath
func (st *flbState) run() error {
	n := st.g.NumTasks()
	if st.sink != nil {
		st.sink.Begin(obs.Begin{Kind: obs.KindSchedule, Tasks: n, Procs: st.sys.P})
	}
	if st.hetero {
		for p := 0; p < st.sys.P; p++ {
			st.classPRT[st.classOf[p]].Push(p, pq.Key{Primary: 0})
		}
	} else {
		for p := 0; p < st.sys.P; p++ {
			st.all.Push(p, pq.Key{Primary: 0})
		}
	}
	// Entry tasks have no enabling processor; they are non-EP with LMT 0.
	for _, t := range st.ready.Initial() {
		st.lmt[t] = 0
		st.emt[t] = 0
		st.ep[t] = -1
		st.nonEP.Push(t, pq.Key{Primary: 0, Secondary: st.blKey(t)})
		if st.sink != nil {
			st.sink.TaskReady(obs.TaskReady{Task: t, BL: st.bl[t], EP: -1})
		}
	}

	for iter := 0; iter < n; iter++ {
		// Cancellation poll, amortized to one interface call per 4096
		// placements so it stays invisible next to the O(log) heap work.
		if st.ctx != nil && iter&4095 == 0 {
			if err := st.ctx.Err(); err != nil {
				return err
			}
		}
		t, p, est, ok := st.scheduleTask(iter)
		if !ok {
			// Unreachable on a validated DAG: there is always a ready task.
			panic("core: FLB ran out of ready tasks before scheduling all tasks")
		}
		st.s.Place(t, p, est)
		st.updateTaskLists(p)
		st.updateProcLists(p)
		st.updateReadyTasks(t)
	}
	if st.sink != nil {
		st.sink.End(obs.End{Kind: obs.KindSchedule, Makespan: st.s.Makespan()})
	}
	return nil
}

func growFloat(v []float64, n int) []float64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]float64, n)
}

func growProc(v []machine.Proc, n int) []machine.Proc {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]machine.Proc, n)
}

// estEP returns the estimated start time of EP task t on its enabling
// processor p.
//
//flb:hotpath
func (st *flbState) estEP(t int, p machine.Proc) float64 {
	return math.Max(st.emt[t], st.s.PRT(p))
}

// execTime returns the execution time of task t on processor p under the
// system's speed factors (w(t) itself on homogeneous systems).
//
//flb:hotpath
func (st *flbState) execTime(t int, p machine.Proc) float64 {
	return st.sys.ExecTime(st.g.Comp(t), p)
}

// activeKey returns the primary active-heap key of EP task t on its
// enabling processor p: its EST on the homogeneous path (the paper's
// key), its EFT on the related-machines path, where start times alone
// cannot rank processors of different speeds.
//
//flb:hotpath
func (st *flbState) activeKey(t int, p machine.Proc) float64 {
	if st.hetero {
		return st.estEP(t, p) + st.execTime(t, p)
	}
	return st.estEP(t, p)
}

// bestNonEPProc picks the processor for non-EP task t on a related
// machine: the earliest-idle processor of the class minimizing EFT =
// max(LMT(t), PRT) + w(t)/speed. Ties across classes resolve toward the
// faster class (classSpeed is descending and the comparison is strict).
// It returns the processor, the start time there, and the EFT key.
//
//flb:hotpath
func (st *flbState) bestNonEPProc(t int) (machine.Proc, float64, float64) {
	w := st.g.Comp(t)
	lmt := st.lmt[t]
	var bp machine.Proc
	var bestEst float64
	bestEFT := math.Inf(1)
	for c := range st.classPRT {
		p, _, found := st.classPRT[c].Peek()
		if !found {
			continue // unreachable: every processor stays in its class heap
		}
		est := math.Max(lmt, st.s.PRT(p))
		eft := est + w/st.classSpeed[c]
		if eft < bestEFT {
			bp, bestEst, bestEFT = p, est, eft
		}
	}
	return bp, bestEst, bestEFT
}

// blKey returns the secondary heap key implementing the bottom-level
// tie-break (negated: larger bottom level first), or 0 under the ablation.
//
//flb:hotpath
func (st *flbState) blKey(t int) float64 {
	if st.noBL {
		return 0
	}
	return -st.bl[t]
}

// scheduleTask selects and returns the next (task, processor, start time)
// per the paper's ScheduleTask procedure: it compares the best EP-type
// pair against the best non-EP-type pair, preferring the non-EP pair on a
// tie because its communication is already overlapped with computation.
// The comparison key is the start time on the homogeneous path (the
// paper's criterion) and the finish time on the related-machines path,
// where a slow processor's early start can hide a late finish.
//
//flb:hotpath
func (st *flbState) scheduleTask(iter int) (task int, proc machine.Proc, est float64, ok bool) {
	haveEP := false
	var t1 int
	var p1 machine.Proc
	var est1, cmp1 float64
	if p, _, found := st.active.Peek(); found {
		if t, _, found2 := st.emtEP[p].Peek(); found2 {
			haveEP = true
			t1, p1 = t, p
			est1 = st.estEP(t1, p1)
			cmp1 = est1
			if st.hetero {
				cmp1 = est1 + st.execTime(t1, p1)
			}
		}
	}
	haveNonEP := false
	var t2 int
	var p2 machine.Proc
	var est2, cmp2 float64
	if t, _, found := st.nonEP.Peek(); found {
		haveNonEP = true
		t2 = t
		if st.hetero {
			p2, est2, cmp2 = st.bestNonEPProc(t2)
		} else {
			p, _, _ := st.all.Peek()
			p2 = p
			est2 = math.Max(st.lmt[t2], st.s.PRT(p2))
			cmp2 = est2
		}
	}

	//flb:exact start-time tie rule (§4.1): the ablation flips the winner only on bit-identical keys
	epWins := haveEP && (!haveNonEP || cmp1 < cmp2 || (st.preferEP && cmp1 == cmp2))
	chooseEP := false
	switch {
	case epWins:
		// The non-EP pair wins start-time ties (unless the PreferEPOnTie
		// ablation is set), so EP normally requires est1 < est2.
		task, proc, est, ok = t1, p1, est1, true
		chooseEP = true
	case haveNonEP:
		task, proc, est, ok = t2, p2, est2, true
	default:
		return 0, 0, 0, false
	}

	if st.sink != nil {
		st.sink.SchedStep(obs.SchedStep{
			Iter:       iter,
			Task:       task,
			Proc:       int(proc),
			Start:      est,
			Finish:     est + st.execTime(task, proc),
			HaveEP:     haveEP,
			EPTask:     t1,
			EPProc:     int(p1),
			EPStart:    est1,
			HaveNonEP:  haveNonEP,
			NonEPTask:  t2,
			NonEPProc:  int(p2),
			NonEPStart: est2,
			ChoseEP:    chooseEP,
			//flb:exact the Tie flag reports the §4.1 tie rule, which fires only on bit-identical keys
			Tie:         haveEP && haveNonEP && cmp1 == cmp2,
			NonEPLen:    st.nonEP.Len(),
			ActiveProcs: st.active.Len(),
		})
	}

	if chooseEP {
		st.emtEP[p1].Remove(t1)
		st.lmtEP[p1].Remove(t1)
	} else {
		st.nonEP.Remove(task)
	}
	return task, proc, est, ok
}

// updateTaskLists implements the paper's UpdateTaskLists: after p's ready
// time grew, EP tasks enabled by p whose LMT dropped below PRT(p) no
// longer satisfy the EP condition and move to the non-EP list. Tasks are
// tested in LMT order, so the loop stops at the first task still EP.
//
//flb:hotpath
func (st *flbState) updateTaskLists(p machine.Proc) {
	prt := st.s.PRT(p)
	for {
		t, _, found := st.lmtEP[p].Peek()
		if !found || st.lmt[t] >= prt {
			return
		}
		st.lmtEP[p].Remove(t)
		st.emtEP[p].Remove(t)
		st.nonEP.Push(t, pq.Key{Primary: st.lmt[t], Secondary: st.blKey(t)})
		if st.sink != nil {
			st.sink.TaskDemoted(obs.TaskDemoted{Task: t, Proc: int(p), LMT: st.lmt[t]})
		}
	}
}

// updateProcLists implements the paper's UpdateProcLists: refresh p's
// priority in (or remove it from) the active-processor list, and refresh
// its PRT key in the global processor list.
//
//flb:hotpath
func (st *flbState) updateProcLists(p machine.Proc) {
	if t, _, found := st.emtEP[p].Peek(); found {
		st.active.PushOrUpdate(p, pq.Key{Primary: st.activeKey(t, p), Secondary: st.blKey(t)})
	} else {
		st.active.Remove(p)
	}
	if st.hetero {
		st.classPRT[st.classOf[p]].Update(p, pq.Key{Primary: st.s.PRT(p)})
	} else {
		st.all.Update(p, pq.Key{Primary: st.s.PRT(p)})
	}
}

// updateReadyTasks implements the paper's UpdateReadyTasks: classify every
// task made ready by t's placement as EP or non-EP and insert it into the
// corresponding lists, updating the enabling processor's active priority.
//
//flb:hotpath
func (st *flbState) updateReadyTasks(t int) {
	for _, nt := range st.ready.Complete(t) {
		st.classifyReady(nt)
	}
}

// classifyReady computes LMT, EP and EMT for the newly ready task nt and
// files it into the right list.
//
// EMT follows the convention validated against Table 1 (DESIGN.md §5):
// messages from predecessors on the enabling processor cost their
// producer's finish time only. Because FT(pred on p) <= PRT(p), the
// resulting EST = max(EMT, PRT) is identical to the paper's definition.
//
//flb:hotpath
func (st *flbState) classifyReady(nt int) {
	lmt, ep := 0.0, machine.Proc(-1)
	for k, pe := 0, st.g.PredEdges(nt); k < pe.Len(); k++ {
		ei := pe.At(k)
		e := st.g.Edge(ei)
		arrive := st.s.Finish(e.From) + st.sys.RemoteCost(e.Comm)
		p := st.s.Proc(e.From)
		// Last message arrival and its source processor; arrival ties break
		// toward the smaller processor index (DESIGN.md §5, required to
		// reproduce Table 1).
		//flb:exact arrival ties must compare bit-identical finish+comm sums to pick the Table 1 enabling proc
		if arrive > lmt || (arrive == lmt && (ep == -1 || p < ep)) {
			lmt, ep = arrive, p
		}
	}
	st.lmt[nt] = lmt
	st.ep[nt] = ep

	prt := st.s.PRT(ep)
	if lmt < prt {
		// Non-EP type: it cannot start before LMT anywhere, and the
		// enabling processor is busy past LMT.
		st.nonEP.Push(nt, pq.Key{Primary: lmt, Secondary: st.blKey(nt)})
		if st.sink != nil {
			st.sink.TaskReady(obs.TaskReady{Task: nt, LMT: lmt, BL: st.bl[nt], EP: int(ep)})
		}
		return
	}
	// EP type: compute the effective message arrival time on ep.
	emt := 0.0
	for k, pe := 0, st.g.PredEdges(nt); k < pe.Len(); k++ {
		ei := pe.At(k)
		e := st.g.Edge(ei)
		a := st.s.ArrivalTime(e, ep)
		if a > emt {
			emt = a
		}
	}
	st.emt[nt] = emt
	if st.sink != nil {
		st.sink.TaskReady(obs.TaskReady{Task: nt, LMT: lmt, EMT: emt, BL: st.bl[nt], EP: int(ep), IsEP: true})
	}
	st.emtEP[ep].Push(nt, pq.Key{Primary: emt, Secondary: st.blKey(nt)})
	st.lmtEP[ep].Push(nt, pq.Key{Primary: lmt, Secondary: st.blKey(nt)})
	// The enabling processor may have become active, or its best EP task
	// may have changed.
	if head, _, found := st.emtEP[ep].Peek(); found {
		st.active.PushOrUpdate(ep, pq.Key{Primary: st.activeKey(head, ep), Secondary: st.blKey(head)})
	}
}
