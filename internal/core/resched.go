package core

import (
	"fmt"

	"flb/internal/fault"
	"flb/internal/graph"
	"flb/internal/machine"
	"flb/internal/obs"
	"flb/internal/schedule"
)

// Rescheduler is the online repair engine behind flb.SimulateFaulty:
// when a processor fails it remaps the unexecuted suffix of the plan
// onto the surviving processors using FLB's selection criterion — the
// ready task able to start earliest, placed on the processor achieving
// that start — evaluated against the repair state (actual finish times
// of executed tasks, checkpoint fetch costs for outputs lost with a dead
// processor, survivor availability floors).
//
// Like Scheduler it is a reusable arena: repeated repairs on same-sized
// problems allocate nothing in steady state. When the fault precedes all
// execution (a cold crash at time zero), the repair IS a fresh FLB run
// on the surviving sub-machine: the embedded Scheduler arena computes it
// and placements map back through the survivor indices. This is valid
// because communication cost does not depend on processor identity
// (machine.RemoteCost); on a related machine the sub-system additionally
// carries the survivors' speed factors, compacted into an arena-owned
// slice.
//
// On uniformly related machines a crash is the limit case speed → 0: a
// dead processor executes nothing (infinite remaining exec time), so
// dropping it from the survivor set and letting the speed-aware
// criterion re-place its work — typically onto slower but live survivors
// — is exactly the related-machines generalization of the paper's
// repair. The selection key follows the scheduler's: earliest start on
// homogeneous survivors, earliest finish (start + w/speed) when the
// survivors have distinct speeds.
//
// A Rescheduler is not safe for concurrent use.
type Rescheduler struct {
	sc        *Scheduler
	plan      *schedule.Schedule
	ready     []int
	pending   []int
	inPlan    []bool
	procMap   []machine.Proc
	subSpeeds []float64
	sink      obs.Sink
}

// Observe sets the sink receiving one obs.SchedStep per repair placement
// (winner only — the repair loop has no EP/non-EP candidate split),
// bracketed by obs.KindRepair Begin/End events. The embedded cold-start
// sub-scheduler is deliberately not observed: its processor indices are
// sub-machine-local and would mislead a trace consumer. Nil disables
// observability (the zero-allocation path).
func (r *Rescheduler) Observe(s obs.Sink) { r.sink = s }

// NewRescheduler returns an empty repair arena running the default FLB
// variant.
func NewRescheduler() *Rescheduler {
	return &Rescheduler{sc: NewScheduler(FLB{})}
}

// Repair implements fault.Repairer.
func (r *Rescheduler) Repair(req *fault.Request) error {
	alive := req.AliveCount()
	if alive == 0 {
		return fmt.Errorf("core: reschedule with no surviving processors")
	}
	if r.sink != nil {
		r.sink.Begin(obs.Begin{Kind: obs.KindRepair, Tasks: len(req.Todo), Procs: req.Sys.P})
	}
	if r.coldStart(req) {
		return r.repairCold(req, alive)
	}
	return r.repairSuffix(req)
}

// coldStart reports whether nothing has executed and every survivor is
// idle from time zero — the case where the repair problem is exactly a
// fresh scheduling problem on the surviving sub-machine.
func (r *Rescheduler) coldStart(req *fault.Request) bool {
	if len(req.Todo) != req.G.NumTasks() {
		return false
	}
	for p, ok := range req.Alive {
		if ok && req.Floor[p] != 0 {
			return false
		}
	}
	return true
}

// repairCold runs full FLB on a compacted system of the alive processors
// and maps the placements back to actual processor indices.
func (r *Rescheduler) repairCold(req *fault.Request, alive int) error {
	r.procMap = r.procMap[:0]
	r.subSpeeds = r.subSpeeds[:0]
	for p, ok := range req.Alive {
		if ok {
			r.procMap = append(r.procMap, machine.Proc(p))
			if req.Sys.Speeds != nil {
				r.subSpeeds = append(r.subSpeeds, req.Sys.Speeds[p])
			}
		}
	}
	subSys := machine.System{P: alive, Comm: req.Sys.Comm}
	if req.Sys.Speeds != nil {
		subSys.Speeds = r.subSpeeds
	}
	sub, err := r.sc.Schedule(req.G, subSys)
	if err != nil {
		return err
	}
	for i, t := range sub.PlacementOrder() {
		req.Assign(t, r.procMap[sub.Proc(t)])
		if r.sink != nil {
			r.sink.SchedStep(obs.SchedStep{
				Iter:   i,
				Task:   t,
				Proc:   int(r.procMap[sub.Proc(t)]),
				Start:  sub.Start(t),
				Finish: sub.Finish(t),
			})
		}
	}
	if r.sink != nil {
		r.sink.End(obs.End{Kind: obs.KindRepair, Makespan: sub.Makespan()})
	}
	return nil
}

// repairSuffix list-schedules the pending tasks with the FLB criterion
// against the executed prefix: each step places the (task, survivor)
// pair with the earliest achievable start time. Placement order is a
// topological order of the pending sub-DAG, so Request.Seq is a valid
// execution order.
func (r *Rescheduler) repairSuffix(req *fault.Request) error {
	g, sys := req.G, req.Sys
	n := g.NumTasks()
	if r.plan == nil {
		r.plan = schedule.New(g, sys)
	} else {
		r.plan.Reset(g, sys)
	}
	r.plan.Algorithm = "flb-resched"
	for p := 0; p < sys.P; p++ {
		if req.Alive[p] {
			r.plan.SetPRTFloor(p, req.Floor[p])
		}
	}
	bl := g.BottomLevels()
	r.inPlan = growBool(r.inPlan, n)
	clear(r.inPlan)
	for _, t := range req.Todo {
		r.inPlan[t] = true
	}
	r.pending = growInt(r.pending, n)
	r.ready = r.ready[:0]
	for _, t := range req.Todo {
		cnt := 0
		for k, pe := 0, g.PredEdges(t); k < pe.Len(); k++ {
			ei := pe.At(k)
			if r.inPlan[g.Edge(ei).From] {
				cnt++
			}
		}
		r.pending[t] = cnt
		if cnt == 0 {
			r.ready = append(r.ready, t)
		}
	}
	// The selection key: earliest start on homogeneous survivors (the
	// paper's criterion), earliest finish when the survivors' speeds
	// differ — the homogeneous comparisons stay bit-identical to the seed.
	het := sys.Heterogeneous()
	for placed := 0; placed < len(req.Todo); placed++ {
		bi, bt, bp := -1, -1, machine.Proc(-1)
		best, bestStart := 0.0, 0.0
		for i, t := range r.ready {
			for p := 0; p < sys.P; p++ {
				if !req.Alive[p] {
					continue
				}
				est := r.est(req, t, p)
				key := est
				if het {
					key += sys.ExecTime(g.Comp(t), p)
				}
				if bi < 0 || betterRepair(key, best, bl, t, bt, p, bp) {
					bi, bt, bp, best, bestStart = i, t, p, key, est
				}
			}
		}
		if bi < 0 {
			return fmt.Errorf("core: reschedule stuck with %d tasks left — pending suffix is cyclic", len(req.Todo)-placed)
		}
		r.plan.Place(bt, bp, bestStart)
		req.Assign(bt, bp)
		if r.sink != nil {
			r.sink.SchedStep(obs.SchedStep{
				Iter:   placed,
				Task:   bt,
				Proc:   int(bp),
				Start:  bestStart,
				Finish: bestStart + sys.ExecTime(g.Comp(bt), bp),
			})
		}
		r.inPlan[bt] = false
		r.ready[bi] = r.ready[len(r.ready)-1]
		r.ready = r.ready[:len(r.ready)-1]
		for k, se := 0, g.SuccEdges(bt); k < se.Len(); k++ {
			ei := se.At(k)
			to := g.Edge(ei).To
			if !r.inPlan[to] {
				continue
			}
			r.pending[to]--
			if r.pending[to] == 0 {
				r.ready = append(r.ready, to)
			}
		}
	}
	if r.sink != nil {
		r.sink.End(obs.End{Kind: obs.KindRepair, Makespan: r.plan.Makespan()})
	}
	return nil
}

// ReplanSuffix rebuilds the tail of a previously computed schedule for a
// weight-drifted resubmission of the same graph structure: the first k
// placements of base are replayed bit-identically (task, processor and
// start time), and the remaining tasks are list-scheduled onto g in
// bottom-level priority order (the paper's task priority; ties to the
// smaller task id), each task placed on the processor achieving its
// earliest start (ties to the smaller processor index). Selection runs
// off a binary heap, so a repair of S tasks costs O(S log S + S·d·P)
// instead of the O(S·ready·P) full rescan the fault path performs — the
// near-hit tier must stay well under a cold FLB run to be worth serving.
// It is the engine behind the schedule cache's near-hit tier
// (internal/memo).
//
// Soundness of the prefix replay requires that for every task in
// base.PlacementOrder()[:k] the computation cost and every in-edge
// communication cost are unchanged between base's graph and g: placement
// order is topological, so all predecessors of a replayed task are
// themselves replayed, their finish times reproduce exactly (unchanged
// comp), and every replayed start time remains feasible (unchanged
// in-edge comms). The caller (the cache) establishes this by choosing k
// as the minimum base position over weight-changed tasks.
//
// The replanned suffix is deterministic in (g, sys, base, k) — the arena
// is history-independent, so any Rescheduler produces bit-identical
// output — but it is NOT the schedule a cold FLB run on g would produce:
// FLB's tie-breaking uses bottom levels, which are global functions of
// all downstream weights, so a trailing drift can reorder even the
// untouched prefix of a cold run. See DESIGN.md §13 for the full
// argument. The run is deliberately unobserved (no sink events): the
// cache serves it outside any observed scheduling run.
//
// The returned schedule is arena-owned: valid only until the next Repair
// or ReplanSuffix call on r. Callers that keep it must Clone it.
func (r *Rescheduler) ReplanSuffix(g *graph.Graph, sys machine.System, base *schedule.Schedule, k int) (*schedule.Schedule, error) {
	n := g.NumTasks()
	order := base.PlacementOrder()
	if len(order) != n {
		return nil, fmt.Errorf("core: ReplanSuffix base places %d tasks, graph has %d", len(order), n)
	}
	if base.NumProcs() != sys.P {
		return nil, fmt.Errorf("core: ReplanSuffix base has P=%d, system has P=%d", base.NumProcs(), sys.P)
	}
	if k < 0 || k > n {
		return nil, fmt.Errorf("core: ReplanSuffix prefix length %d out of range [0,%d]", k, n)
	}
	if r.plan == nil {
		r.plan = schedule.New(g, sys)
	} else {
		r.plan.Reset(g, sys)
	}
	r.plan.Algorithm = "flb-nearhit"
	for i := 0; i < k; i++ {
		t := order[i]
		r.plan.Place(t, base.Proc(t), base.Start(t))
	}
	if k == n {
		return r.plan, nil
	}
	bl := g.BottomLevels()
	r.inPlan = growBool(r.inPlan, n)
	clear(r.inPlan)
	for i := k; i < n; i++ {
		r.inPlan[order[i]] = true
	}
	r.pending = growInt(r.pending, n)
	r.ready = r.ready[:0]
	for i := k; i < n; i++ {
		t := order[i]
		cnt := 0
		for k, pe := 0, g.PredEdges(t); k < pe.Len(); k++ {
			ei := pe.At(k)
			if r.inPlan[g.Edge(ei).From] {
				cnt++
			}
		}
		r.pending[t] = cnt
		if cnt == 0 {
			r.readyPush(bl, t)
		}
	}
	het := sys.Heterogeneous()
	for placed := k; placed < n; placed++ {
		bt := r.readyPop(bl)
		if bt < 0 {
			return nil, fmt.Errorf("core: ReplanSuffix stuck with %d tasks left — suffix is cyclic", n-placed)
		}
		// Earliest start on homogeneous systems (bit-identical to the seed
		// near-hit tier); earliest finish on related machines.
		bp, bestStart := machine.Proc(0), r.plan.EST(bt, 0)
		bestKey := bestStart
		if het {
			bestKey += sys.ExecTime(g.Comp(bt), 0)
		}
		for p := 1; p < sys.P; p++ {
			est := r.plan.EST(bt, machine.Proc(p))
			key := est
			if het {
				key += sys.ExecTime(g.Comp(bt), machine.Proc(p))
			}
			if key < bestKey {
				bp, bestStart, bestKey = machine.Proc(p), est, key
			}
		}
		r.plan.Place(bt, bp, bestStart)
		r.inPlan[bt] = false
		for k, se := 0, g.SuccEdges(bt); k < se.Len(); k++ {
			ei := se.At(k)
			to := g.Edge(ei).To
			if !r.inPlan[to] {
				continue
			}
			r.pending[to]--
			if r.pending[to] == 0 {
				r.readyPush(bl, to)
			}
		}
	}
	return r.plan, nil
}

// priorBefore is the replan priority: larger bottom level first, ties to
// the smaller task id — a total order, so heap extraction (and with it
// the whole replan) is deterministic.
//
//flb:exact equal bottom levels must fall through to the id comparison or the heap order, and the replanned schedule, loses determinism
//flb:hotpath
func priorBefore(bl []float64, a, b int) bool {
	if bl[a] != bl[b] {
		return bl[a] > bl[b]
	}
	return a < b
}

// readyPush inserts t into the ready heap (r.ready ordered by
// priorBefore).
//
//flb:hotpath
func (r *Rescheduler) readyPush(bl []float64, t int) {
	r.ready = append(r.ready, t)
	i := len(r.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !priorBefore(bl, r.ready[i], r.ready[parent]) {
			break
		}
		r.ready[i], r.ready[parent] = r.ready[parent], r.ready[i]
		i = parent
	}
}

// readyPop removes and returns the highest-priority ready task, or -1
// when the heap is empty.
//
//flb:hotpath
func (r *Rescheduler) readyPop(bl []float64) int {
	n := len(r.ready)
	if n == 0 {
		return -1
	}
	top := r.ready[0]
	r.ready[0] = r.ready[n-1]
	r.ready = r.ready[:n-1]
	n--
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && priorBefore(bl, r.ready[c+1], r.ready[c]) {
			c++
		}
		if !priorBefore(bl, r.ready[c], r.ready[i]) {
			break
		}
		r.ready[i], r.ready[c] = r.ready[c], r.ready[i]
		i = c
	}
	return top
}

// est returns the earliest start of pending task t on survivor p: the
// processor's ready time versus the arrival of every predecessor output,
// which comes from the repair plan (unexecuted predecessor already
// replanned), from the predecessor's surviving processor, or from the
// checkpoint store at full remote cost if its processor is dead.
//
//flb:hotpath
func (r *Rescheduler) est(req *fault.Request, t int, p machine.Proc) float64 {
	g, sys := req.G, req.Sys
	rel := r.plan.PRT(p)
	for k, pe := 0, g.PredEdges(t); k < pe.Len(); k++ {
		ei := pe.At(k)
		e := g.Edge(ei)
		var a float64
		if r.plan.Assigned(e.From) {
			a = r.plan.Finish(e.From) + sys.CommCost(e.Comm, r.plan.Proc(e.From), p)
		} else if op := req.Proc[e.From]; req.Alive[op] {
			a = req.Finish[e.From] + sys.CommCost(e.Comm, op, p)
		} else {
			a = req.Finish[e.From] + sys.RemoteCost(e.Comm)
		}
		if a > rel {
			rel = a
		}
	}
	return rel
}

// betterRepair reports whether candidate (est, t, p) beats the incumbent
// (best, bt, bp): earlier selection key (start time, or finish time on
// related machines), then larger bottom level (the paper's priority),
// then smaller task id, then smaller processor index.
//
//flb:exact the repair tie-break is a total order over (start, level, id, proc); equal keys must compare bit-identically or repairs lose determinism
//flb:hotpath
func betterRepair(est, best float64, bl []float64, t, bt int, p, bp machine.Proc) bool {
	if est != best {
		return est < best
	}
	if bl[t] != bl[bt] {
		return bl[t] > bl[bt]
	}
	if t != bt {
		return t < bt
	}
	return p < bp
}

func growInt(v []int, n int) []int {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int, n)
}

func growBool(v []bool, n int) []bool {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]bool, n)
}
