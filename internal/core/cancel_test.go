package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"flb/internal/machine"
	"flb/internal/schedule"
	"flb/internal/workload"
)

// The scale sweep schedules million-task graphs that take whole seconds;
// ScheduleContext exists so a caller can abandon such a run. These tests
// pin its contract: a done context aborts within one poll interval (4096
// placements), the error wraps ctx.Err() so errors.Is sees through it,
// an abort leaves no goroutine behind and does not poison the arena, and
// a context that never fires changes nothing — bit for bit.

// schedFingerprint reduces a schedule to its observable decisions.
func schedFingerprint(s *schedule.Schedule) string {
	out := fmt.Sprintf("makespan=%.9g seq=%v\n", s.Makespan(), s.PlacementOrder())
	for i := 0; i < s.Graph().NumTasks(); i++ {
		out += fmt.Sprintf("t%d p%d %.9g\n", i, s.Proc(i), s.Start(i))
	}
	return out
}

// pollCanceledCtx reports Canceled starting with the poll after `after`,
// making the abort point deterministic — no timing, no goroutines.
type pollCanceledCtx struct {
	context.Context
	polls atomic.Int64
	after int64
}

func (c *pollCanceledCtx) Err() error {
	if c.polls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestScheduleContextPreCanceled(t *testing.T) {
	g := workload.LU(40)
	sys := machine.NewSystem(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	s, err := FLB{}.ScheduleContext(ctx, g, sys)
	if s != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("FLB.ScheduleContext(canceled) = (%v, %v), want (nil, context.Canceled)", s, err)
	}
	sc := NewScheduler(FLB{})
	s, err = sc.ScheduleContext(ctx, g, sys)
	if s != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Scheduler.ScheduleContext(canceled) = (%v, %v), want (nil, context.Canceled)", s, err)
	}
}

// TestScheduleContextDeadlineExceeded pins that — unlike the Execute
// repair budget, which degrades on DeadlineExceeded — the scheduling loop
// aborts on any done context: a partial schedule has no salvage value.
func TestScheduleContextDeadlineExceeded(t *testing.T) {
	g := workload.LU(40)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	s, err := FLB{}.ScheduleContext(ctx, g, machine.NewSystem(4))
	if s != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got (%v, %v), want (nil, context.DeadlineExceeded)", s, err)
	}
}

// TestScheduleContextAbortsAtPoll drives the poll counter directly: with
// the context reporting Canceled from its third poll on, a graph of more
// than 2*4096 tasks must abort mid-run — proving the loop actually polls
// every 4096 placements rather than only at entry.
func TestScheduleContextAbortsAtPoll(t *testing.T) {
	g := workload.LU(150) // 11325 tasks: polls at iterations 0, 4096, 8192
	g.Freeze()
	ctx := &pollCanceledCtx{Context: context.Background(), after: 2}
	s, err := FLB{}.ScheduleContext(ctx, g, machine.NewSystem(8))
	if s != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want mid-run abort with context.Canceled", s, err)
	}
	if got := ctx.polls.Load(); got != 3 {
		t.Fatalf("context polled %d times, want exactly 3 (every 4096 of 11325 placements)", got)
	}
}

// TestScheduleContextArenaSurvivesAbort pins that an aborted run does not
// poison the reused arena: the very next Schedule on the same Scheduler
// must produce the schedule a fresh run produces, bit for bit.
func TestScheduleContextArenaSurvivesAbort(t *testing.T) {
	g := workload.LU(150)
	g.Freeze()
	sys := machine.NewSystem(8)
	sc := NewScheduler(FLB{})
	if _, err := sc.ScheduleContext(&pollCanceledCtx{Context: context.Background(), after: 1}, g, sys); !errors.Is(err, context.Canceled) {
		t.Fatalf("priming abort failed: %v", err)
	}
	after, err := sc.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FLB{}.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if schedFingerprint(after) != schedFingerprint(fresh) {
		t.Fatal("schedule after an aborted run differs from a fresh run")
	}
}

// TestScheduleContextNeverCanceledIsIdentical pins the zero-interference
// contract: running under a live context must not perturb a single
// decision relative to plain Schedule.
func TestScheduleContextNeverCanceledIsIdentical(t *testing.T) {
	g := workload.LU(60)
	g.Freeze()
	sys := machine.NewSystem(8)
	plain, err := FLB{}.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := FLB{}.ScheduleContext(context.Background(), g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if schedFingerprint(plain) != schedFingerprint(ctxed) {
		t.Fatal("ScheduleContext under a live context differs from Schedule")
	}
}

// TestScheduleContextMillionTaskPromptAbort is the scale-path test the
// sweep depends on: cancel a million-task run shortly after it starts and
// require the scheduling goroutine to return promptly (within a generous
// multiple of the 4096-placement poll interval) and to vanish — no leak.
func TestScheduleContextMillionTaskPromptAbort(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task graph build in -short mode")
	}
	g := workload.LU(workload.LUSizeFor(1_000_000))
	g.Freeze() // pay CSR + bottom levels up front, outside the abort window
	sys := machine.NewSystem(32)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		s   *schedule.Schedule
		err error
	}
	done := make(chan result, 1)
	go func() {
		s, err := FLB{}.ScheduleContext(ctx, g, sys)
		done <- result{s, err}
	}()
	time.Sleep(5 * time.Millisecond) // let the run get past reset and into the loop
	cancel()
	canceledAt := time.Now()

	select {
	case r := <-done:
		// A full million-task schedule takes well over a second; returning
		// this fast means the poll fired. Bound the post-cancel latency
		// loosely enough for a loaded CI machine.
		if lat := time.Since(canceledAt); lat > 10*time.Second {
			t.Fatalf("abort latency %v, want prompt return after cancel", lat)
		}
		if r.s != nil || !errors.Is(r.err, context.Canceled) {
			t.Fatalf("got (%v, %v), want (nil, context.Canceled)", r.s, r.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("million-task run did not return after cancellation")
	}

	// The scheduling goroutine must be gone: poll the count briefly to
	// absorb unrelated runtime goroutines winding down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak after aborted run: %d before, %d after", before, now)
	}
}

// TestSchedulerGrow pins that pre-sizing is behavior-neutral: a grown
// arena (even one grown far past the input) schedules bit-identically to
// a fresh one, and degenerate sizes are harmless.
func TestSchedulerGrow(t *testing.T) {
	g := workload.LU(60)
	g.Freeze()
	sys := machine.NewSystem(8)
	fresh, err := FLB{}.Schedule(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range [][2]int{{0, 0}, {10, 1}, {100000, 64}} {
		sc := NewScheduler(FLB{})
		sc.Grow(size[0], size[1])
		s, err := sc.Schedule(g, sys)
		if err != nil {
			t.Fatal(err)
		}
		if schedFingerprint(s) != schedFingerprint(fresh) {
			t.Fatalf("Grow(%d, %d) perturbed the schedule", size[0], size[1])
		}
	}
}
