package flb_test

import (
	"strings"
	"testing"

	"flb"
)

func TestQuickstartFlow(t *testing.T) {
	g := flb.NewGraph("demo")
	a := g.AddTask(2)
	b := g.AddTask(3)
	c := g.AddTask(3)
	d := g.AddTask(1)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, c, 1)
	g.AddEdge(b, d, 2)
	g.AddEdge(c, d, 2)

	s, err := flb.RunProcs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	m := s.ComputeMetrics()
	if m.Makespan <= 0 || m.Speedup <= 0 {
		t.Errorf("metrics = %+v", m)
	}
	if !strings.Contains(s.Gantt(40), "P0") {
		t.Error("Gantt output broken")
	}
}

func TestRunWithEveryAlgorithm(t *testing.T) {
	g := flb.PaperExample()
	for _, name := range flb.Algorithms() {
		s, err := flb.RunWith(name, g, 2, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := flb.RunWith("bogus", g, 2, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTraceReproducesTable1(t *testing.T) {
	steps, s, err := flb.Trace(flb.PaperExample(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 8 || s.Makespan() != 14 {
		t.Fatalf("steps=%d makespan=%v", len(steps), s.Makespan())
	}
	out := flb.FormatTrace(steps, nil)
	if !strings.Contains(out, "t7 -> p0 [12-14]") {
		t.Errorf("trace:\n%s", out)
	}
}

func TestGraphRoundTripThroughFacade(t *testing.T) {
	g := flb.LU(5)
	text := g.TextString()
	g2, err := flb.ParseGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTasks() != g.NumTasks() {
		t.Error("round trip lost tasks")
	}
	if _, err := flb.ParseGraph("task x\n"); err == nil {
		t.Error("bad text accepted")
	}
	if _, err := flb.ReadGraph(strings.NewReader(text)); err != nil {
		t.Errorf("ReadGraph: %v", err)
	}
}

func TestWorkloadFacade(t *testing.T) {
	for _, g := range []*flb.Graph{
		flb.LU(4), flb.Laplace(4), flb.Stencil(3, 3), flb.FFT(4), flb.PaperExample(),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
	g, err := flb.WorkloadInstance("laplace", 100, 0.2, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() < 100 {
		t.Errorf("instance too small: %d", g.NumTasks())
	}
}

func TestCustomCommModel(t *testing.T) {
	g := flb.PaperExample()
	sys := flb.System{P: 2, Comm: flb.LatencyBandwidth{Latency: 1, Bandwidth: 2}}
	s, err := flb.RunOn(g, sys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The latency model makes communication more expensive than the raw
	// weights for small messages, so the makespan can only grow relative
	// to... (not strictly guaranteed in general, but on this graph it is:
	// every edge w has cost 1 + w/2 vs w, i.e. cheaper for w > 2, costlier
	// below). Just check the model is actually exercised: a custom system
	// yields a valid, complete schedule with a different makespan than an
	// all-local run.
	if s.Makespan() <= 0 {
		t.Error("empty makespan")
	}
}

func TestNewAlgorithmDirectUse(t *testing.T) {
	a, err := flb.NewAlgorithm("flb", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "FLB" {
		t.Errorf("Name = %q", a.Name())
	}
	s, err := a.Schedule(flb.LU(6), flb.NewSystem(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero-value FLB struct is also directly usable.
	var f flb.FLB
	if _, err := f.Schedule(flb.LU(4), flb.NewSystem(2)); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateFacade(t *testing.T) {
	g := flb.PaperExample()
	s, err := flb.RunProcs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Zero jitter reproduces the planned makespan exactly.
	r, err := flb.Simulate(s, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != s.Makespan() {
		t.Errorf("exact simulation makespan = %v, want %v", r.Makespan, s.Makespan())
	}
	// Jittered runs are deterministic in the seed.
	a, err := flb.Simulate(s, 0.3, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flb.Simulate(s, 0.3, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Error("Simulate not deterministic for fixed seed")
	}
	c, _ := flb.Simulate(s, 0.3, 0.3, 8)
	if a.Makespan == c.Makespan {
		t.Error("different seeds gave identical jittered makespans")
	}
}

func TestSimulateContendedFacade(t *testing.T) {
	g := flb.PaperExample()
	s, err := flb.RunProcs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	free, err := flb.Simulate(s, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []flb.Network{flb.SharedBus, flb.PerLink, flb.PerPort} {
		r, err := flb.SimulateContended(s, net)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan < free.Makespan {
			t.Errorf("%v: contended makespan %v below %v", net, r.Makespan, free.Makespan)
		}
	}
}

func TestRefineFacade(t *testing.T) {
	g := flb.PaperExample()
	s, err := flb.RunProcs(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flb.Refine(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Makespan() > s.Makespan() {
		t.Errorf("refined %v worse than %v", r.Makespan(), s.Makespan())
	}
}

func TestOptimalFacade(t *testing.T) {
	// The paper's Fig. 1 example: the proven optimum on 2 processors is
	// 13, one unit below the published FLB/ETF schedule.
	r, err := flb.Optimal(flb.PaperExample(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Proven || r.Makespan != 13 {
		t.Errorf("optimum = %v (proven %v), want 13", r.Makespan, r.Proven)
	}
	if err := r.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}
